package workload

import (
	"math"
	"testing"

	"triplea/internal/nand"
	"triplea/internal/simx"
	"triplea/internal/topo"
	"triplea/internal/trace"
)

func testGeometry() topo.Geometry {
	n := nand.DefaultParams()
	n.BlocksPerPlane = 64
	return topo.Geometry{
		Switches:          4,
		ClustersPerSwitch: 16,
		FIMMsPerCluster:   4,
		PackagesPerFIMM:   8,
		Nand:              n,
	}
}

func TestTable1ProfilesComplete(t *testing.T) {
	profiles := Table1Profiles()
	if len(profiles) != 13 {
		t.Fatalf("%d profiles, want 13", len(profiles))
	}
	want := map[string]struct {
		readRatio float64
		hot       int
		hotRatio  float64
	}{
		"cfs": {0.765, 0, 0}, "fin": {0.502, 5, 0.557}, "hm": {0.551, 5, 0.437},
		"mds": {0.259, 4, 0.541}, "msnfs": {0.528, 4, 0.288}, "prn": {0.971, 2, 0.509},
		"proj": {0.291, 6, 0.613}, "prxy": {0.611, 3, 0.393}, "usr": {0.289, 5, 0.401},
		"web": {1, 0, 0}, "websql": {0.543, 4, 0.506},
		"g-eigen": {1, 6, 0.706}, "l-eigen": {1, 11, 0.481},
	}
	for _, p := range profiles {
		w, ok := want[p.Name]
		if !ok {
			t.Errorf("unexpected profile %q", p.Name)
			continue
		}
		if math.Abs(p.ReadRatio-w.readRatio) > 1e-9 {
			t.Errorf("%s ReadRatio = %v, want %v", p.Name, p.ReadRatio, w.readRatio)
		}
		if p.HotClusters != w.hot {
			t.Errorf("%s HotClusters = %d, want %d", p.Name, p.HotClusters, w.hot)
		}
		if math.Abs(p.HotIORatio-w.hotRatio) > 1e-9 {
			t.Errorf("%s HotIORatio = %v, want %v", p.Name, p.HotIORatio, w.hotRatio)
		}
	}
	// websql's hot clusters sit on one switch; others spread.
	p, _ := ProfileByName("websql")
	if !p.HotSameSwitch {
		t.Error("websql not pinned to one switch")
	}
	if p, _ := ProfileByName("g-eigen"); p.HotSameSwitch {
		t.Error("g-eigen wrongly pinned to one switch")
	}
}

func TestProfileByName(t *testing.T) {
	if _, ok := ProfileByName("nope"); ok {
		t.Error("found nonexistent profile")
	}
	p, ok := ProfileByName("fin")
	if !ok || p.Name != "fin" {
		t.Error("fin not found")
	}
}

func TestHotSetSpread(t *testing.T) {
	g := testGeometry()
	p := Profile{HotClusters: 6}
	hot := HotSet(g, p)
	if len(hot) != 6 {
		t.Fatalf("|hot| = %d", len(hot))
	}
	switches := map[int]int{}
	for _, c := range hot {
		switches[c.Switch]++
	}
	if len(switches) != 4 {
		t.Errorf("6 spread hot clusters used %d switches, want 4", len(switches))
	}
	// Distinct clusters.
	seen := map[int]bool{}
	for _, c := range hot {
		if seen[c.Flat(g)] {
			t.Errorf("duplicate hot cluster %v", c)
		}
		seen[c.Flat(g)] = true
	}
}

func TestHotSetSameSwitch(t *testing.T) {
	g := testGeometry()
	hot := HotSet(g, Profile{HotClusters: 4, HotSameSwitch: true})
	for _, c := range hot {
		if c.Switch != 0 {
			t.Errorf("hot cluster %v not on switch 0", c)
		}
	}
	if HotSet(g, Profile{}) != nil {
		t.Error("HotSet without hot clusters not nil")
	}
}

func TestGenerateMatchesProfile(t *testing.T) {
	g := testGeometry()
	p, _ := ProfileByName("fin")
	p.Requests = 20000
	reqs, stats, err := Generate(g, p, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(reqs) != p.Requests {
		t.Fatalf("generated %d requests", len(reqs))
	}
	if math.Abs(stats.ReadRatio()-p.ReadRatio) > 0.02 {
		t.Errorf("generated read ratio %v, want ~%v", stats.ReadRatio(), p.ReadRatio)
	}
	if math.Abs(stats.HotIORatio()-p.HotIORatio) > 0.02 {
		t.Errorf("generated hot ratio %v, want ~%v", stats.HotIORatio(), p.HotIORatio)
	}
	if math.Abs(stats.ReadRandomness()-p.ReadRandomness) > 0.03 {
		t.Errorf("read randomness %v, want ~%v", stats.ReadRandomness(), p.ReadRandomness)
	}
	if math.Abs(stats.WriteRandomness()-p.WriteRandomness) > 0.03 {
		t.Errorf("write randomness %v, want ~%v", stats.WriteRandomness(), p.WriteRandomness)
	}
	// Offered rate close to requested.
	ts := trace.Summarize(reqs)
	if r := ts.OfferedIOPS(); math.Abs(r-p.RateIOPS)/p.RateIOPS > 0.05 {
		t.Errorf("offered rate %v, want ~%v", r, p.RateIOPS)
	}
	// Arrivals are sorted.
	for i := 1; i < len(reqs); i++ {
		if reqs[i].Arrival < reqs[i-1].Arrival {
			t.Fatal("arrivals not monotonic")
		}
	}
}

func TestGenerateHotTraffic(t *testing.T) {
	g := testGeometry()
	p, _ := ProfileByName("g-eigen")
	p.Requests = 10000
	reqs, stats, err := Generate(g, p, 7)
	if err != nil {
		t.Fatal(err)
	}
	hotFlats := map[int]bool{}
	for _, c := range stats.HotClusters {
		hotFlats[c.Flat(g)] = true
	}
	pagesPerCluster := g.PagesPerFIMM().Int64() * int64(g.FIMMsPerCluster)
	hot := 0
	for _, r := range reqs {
		if hotFlats[int(r.LPN/pagesPerCluster)] {
			hot++
		}
	}
	frac := float64(hot) / float64(len(reqs))
	if math.Abs(frac-p.HotIORatio) > 0.02 {
		t.Errorf("hot LPN fraction %v, want ~%v", frac, p.HotIORatio)
	}
}

func TestGenerateFootprintBounded(t *testing.T) {
	g := testGeometry()
	p := MicroRead(3, 5000, 100_000)
	p.Footprint = 128
	reqs, _, err := Generate(g, p, 1)
	if err != nil {
		t.Fatal(err)
	}
	pagesPerCluster := g.PagesPerFIMM().Int64() * int64(g.FIMMsPerCluster)
	for _, r := range reqs {
		off := r.LPN % pagesPerCluster
		if off >= 128 {
			t.Fatalf("LPN %d offset %d beyond footprint", r.LPN, off)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	g := testGeometry()
	p := MicroRead(2, 1000, 50_000)
	a, _, _ := Generate(g, p, 99)
	b, _, _ := Generate(g, p, 99)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different traces")
		}
	}
	c, _, _ := Generate(g, p, 100)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateValidation(t *testing.T) {
	g := testGeometry()
	if _, _, err := Generate(g, Profile{Requests: 0, RateIOPS: 1}, 1); err == nil {
		t.Error("zero requests accepted")
	}
	if _, _, err := Generate(g, Profile{Requests: 1, RateIOPS: 0}, 1); err == nil {
		t.Error("zero rate accepted")
	}
	bad := g
	bad.Switches = 0
	if _, _, err := Generate(bad, MicroRead(1, 10, 1000), 1); err == nil {
		t.Error("bad geometry accepted")
	}
}

func TestMicroProfiles(t *testing.T) {
	r := MicroRead(4, 100, 1000)
	if r.ReadRatio != 1 || r.HotClusters != 4 || r.HotIORatio != 0.7 {
		t.Errorf("MicroRead = %+v", r)
	}
	w := MicroWrite(0, 100, 1000)
	if w.ReadRatio != 0 || w.HotIORatio != 0 {
		t.Errorf("MicroWrite = %+v", w)
	}
	if hotRatioFor(10) != 0.85 {
		t.Errorf("hotRatioFor(10) = %v, want cap 0.85", hotRatioFor(10))
	}
}

func TestZipfSkewConcentratesAccesses(t *testing.T) {
	g := testGeometry()
	p := MicroRead(1, 20000, 100_000)
	p.Footprint = 256
	p.ZipfSkew = 0.99
	reqs, _, err := Generate(g, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	pagesPerCluster := g.PagesPerFIMM().Int64() * int64(g.FIMMsPerCluster)
	counts := map[int64]int{}
	for _, r := range reqs {
		counts[r.LPN%pagesPerCluster]++
	}
	// Top-16 pages should absorb a large share under zipf 0.99, and the
	// most popular page must dominate the median one.
	top := 0
	for off := int64(0); off < 16; off++ {
		top += counts[off]
	}
	frac := float64(top) / float64(len(reqs))
	if frac < 0.25 {
		t.Errorf("top-16 zipf pages got %.2f of accesses, want >= 0.25", frac)
	}
	if counts[0] <= counts[128]*4 {
		t.Errorf("rank-0 count %d not >> rank-128 count %d", counts[0], counts[128])
	}

	// Uniform control: top-16 of 256 pages get about 6%.
	p.ZipfSkew = 0
	reqs, _, _ = Generate(g, p, 3)
	counts = map[int64]int{}
	for _, r := range reqs {
		counts[r.LPN%pagesPerCluster]++
	}
	top = 0
	for off := int64(0); off < 16; off++ {
		top += counts[off]
	}
	if frac := float64(top) / float64(len(reqs)); frac > 0.12 {
		t.Errorf("uniform top-16 share %.2f, want ~0.06", frac)
	}
}

func TestZipfSamplerBounds(t *testing.T) {
	z := newZipfSampler(64, 1.2)
	rng := simx.NewRNG(9)
	for i := 0; i < 10000; i++ {
		if v := z.draw(rng); v < 0 || v >= 64 {
			t.Fatalf("draw %d out of range", v)
		}
	}
}
