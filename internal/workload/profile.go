// Package workload synthesises the paper's workload suite. The real
// traces (SNIA IOTTA, UMass, and the NERSC Carver/GPFS Eigensolver
// collection) are not redistributable, so the generator reproduces the
// published Table 1 characteristics instead — read/write mix, access
// randomness, number of hot clusters and the fraction of I/O aimed at
// them — which are exactly the features the array's link and storage
// contention depend on.
package workload

import "triplea/internal/units"

// Profile describes one workload's published characteristics plus the
// generation parameters needed to synthesise it.
type Profile struct {
	Name string

	ReadRatio       float64 // fraction of requests that are reads
	ReadRandomness  float64 // fraction of reads that are random (vs sequential)
	WriteRandomness float64 // fraction of writes that are random

	HotClusters int     // clusters forming the hot region
	HotIORatio  float64 // fraction of requests aimed at hot clusters

	// HotSameSwitch confines all hot clusters to one switch (the
	// websql situation the paper calls out); otherwise they spread
	// round-robin across switches.
	HotSameSwitch bool

	// Generation parameters.
	Requests  int         // request count to generate
	RateIOPS  float64     // mean offered request rate
	PagesPer  units.Pages // pages per request (paper: 4 KB = 1 page)
	Footprint units.Pages // touched pages per cluster (bounds host memory)

	// Burstiness: real traces arrive in bursts, which is what builds
	// the queues behind the paper's long-tailed CDFs. Arrivals follow
	// an ON/OFF pattern with the given period and duty cycle; during
	// the ON phase the rate is BurstFactor x RateIOPS, and the OFF
	// phase is scaled so the mean stays RateIOPS. BurstFactor <= 1 (or
	// zero period/duty) yields a plain Poisson stream.
	BurstFactor float64
	BurstDuty   float64
	BurstPeriod float64 // nanoseconds

	// ZipfSkew skews random accesses within each cluster's footprint
	// toward low page numbers with probability proportional to
	// 1/rank^ZipfSkew. Zero (the default) draws uniformly; ~0.99 is the
	// classic block-trace skew. Page-level skew concentrates load on
	// individual FIMMs, feeding laggard formation on top of the
	// cluster-level hot set.
	ZipfSkew float64
}

// hotClusterCapacityIOPS is the measured effective service rate of one
// cluster under concentrated random 4 KB reads on the default
// configuration, including the head-of-line blocking a hot endpoint
// inflicts on its switch. Offered rates are calibrated against it.
const hotClusterCapacityIOPS = 40_000

// calibratedRate offers each hot cluster ~overload x its effective
// capacity — congested like the paper's hot regions, without driving
// the open-loop queue to collapse.
func calibratedRate(hot int, hotRatio float64, overload float64) float64 {
	if hot == 0 || hotRatio == 0 {
		return 150_000 // uncongested background traffic (cfs/web regime)
	}
	r := overload * hotClusterCapacityIOPS * float64(hot) / hotRatio
	if r > 900_000 {
		r = 900_000
	}
	return r
}

// Table1Profiles returns the thirteen workloads of the paper's Table 1
// with their published characteristics. Offered rates are calibrated so
// hot clusters saturate like the paper's (Section 6.1): hotter
// workloads stress their hot region beyond its service capacity while
// cfs/web (no hot clusters) stay uncongested.
func Table1Profiles() []Profile {
	base := func(name string, readRatio, readRand, writeRand float64, hot int, hotRatio float64) Profile {
		return Profile{
			Name:            name,
			ReadRatio:       readRatio / 100,
			ReadRandomness:  readRand / 100,
			WriteRandomness: writeRand / 100,
			HotClusters:     hot,
			HotIORatio:      hotRatio / 100,
			Requests:        60_000,
			RateIOPS:        calibratedRate(hot, hotRatio/100, 0.9),
			PagesPer:        units.Page,
			Footprint:       1024 * units.Page,
			BurstFactor:     3.5,
			BurstDuty:       0.25,
			BurstPeriod:     20e6, // 20 ms
		}
	}
	profiles := []Profile{
		base("cfs", 76.5, 94.1, 73.8, 0, 0),
		base("fin", 50.2, 90.4, 99.1, 5, 55.7),
		base("hm", 55.1, 93.3, 99.2, 5, 43.7),
		base("mds", 25.9, 80.2, 94.8, 4, 54.1),
		base("msnfs", 52.8, 90.9, 84.9, 4, 28.8),
		base("prn", 97.1, 94.8, 46.6, 2, 50.9),
		base("proj", 29.1, 80.7, 8.5, 6, 61.3),
		base("prxy", 61.1, 97.3, 59.4, 3, 39.3),
		base("usr", 28.9, 90.3, 96.9, 5, 40.1),
		base("web", 100, 95, 0, 0, 0),
		base("websql", 54.3, 73.9, 67.6, 4, 50.6),
		base("g-eigen", 100, 17.1, 0, 6, 70.6),
		base("l-eigen", 100, 17.1, 0, 11, 48.1),
	}
	for i := range profiles {
		if profiles[i].Name == "websql" {
			// All four websql hot clusters share one PCI-E switch
			// (Section 6.1's explanation for its limited IOPS gain).
			profiles[i].HotSameSwitch = true
		}
	}
	return profiles
}

// ProfileByName finds a Table 1 profile.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range Table1Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// MicroRead returns the paper's `read` micro-benchmark: 4 KB random
// reads, with a configurable number of hot clusters (Section 5.2).
func MicroRead(hotClusters int, requests int, rateIOPS float64) Profile {
	return Profile{
		Name:           "read",
		ReadRatio:      1,
		ReadRandomness: 1,
		HotClusters:    hotClusters,
		HotIORatio:     hotRatioFor(hotClusters),
		Requests:       requests,
		RateIOPS:       rateIOPS,
		PagesPer:       units.Page,
		Footprint:      1024 * units.Page,
		BurstFactor:    3.5,
		BurstDuty:      0.25,
		BurstPeriod:    20e6,
	}
}

// MicroWrite returns the paper's `write` micro-benchmark: 4 KB random
// writes.
func MicroWrite(hotClusters int, requests int, rateIOPS float64) Profile {
	p := MicroRead(hotClusters, requests, rateIOPS)
	p.Name = "write"
	p.ReadRatio = 0
	p.WriteRandomness = 1
	return p
}

// hotRatioFor matches the paper's hot-region definition: each hot
// region holds >= 10% of the data, so traffic concentrates on the hot
// set roughly in proportion — while keeping some background traffic.
func hotRatioFor(hot int) float64 {
	if hot <= 0 {
		return 0
	}
	r := 0.30 + 0.10*float64(hot)
	if r > 0.85 {
		r = 0.85
	}
	return r
}
