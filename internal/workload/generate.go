package workload

import (
	"fmt"
	"math"

	"triplea/internal/simx"
	"triplea/internal/topo"
	"triplea/internal/trace"
	"triplea/internal/units"
)

// HotSet reports which clusters a profile heats for a given geometry.
// Hot clusters spread round-robin across switches unless the profile
// pins them to one switch.
func HotSet(g topo.Geometry, p Profile) []topo.ClusterID {
	if p.HotClusters <= 0 {
		return nil
	}
	n := p.HotClusters
	if n > g.TotalClusters() {
		n = g.TotalClusters()
	}
	out := make([]topo.ClusterID, 0, n)
	if p.HotSameSwitch {
		for i := 0; i < n && i < g.ClustersPerSwitch; i++ {
			out = append(out, topo.ClusterID{Switch: 0, Cluster: i})
		}
		return out
	}
	for i := 0; i < n; i++ {
		out = append(out, topo.ClusterID{
			Switch:  i % g.Switches,
			Cluster: (i / g.Switches) % g.ClustersPerSwitch,
		})
	}
	return out
}

// GenStats reports what the generator actually produced, so Table 1
// characteristics can be verified against the synthetic trace.
type GenStats struct {
	Requests    int
	Reads       int
	RandomReads int
	Writes      int
	RandomWrite int
	HotRequests int
	HotClusters []topo.ClusterID
}

// ReadRatio reports the generated read fraction.
func (s GenStats) ReadRatio() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.Reads) / float64(s.Requests)
}

// HotIORatio reports the generated hot-cluster traffic fraction.
func (s GenStats) HotIORatio() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.HotRequests) / float64(s.Requests)
}

// ReadRandomness reports the random fraction among reads.
func (s GenStats) ReadRandomness() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.RandomReads) / float64(s.Reads)
}

// WriteRandomness reports the random fraction among writes.
func (s GenStats) WriteRandomness() float64 {
	if s.Writes == 0 {
		return 0
	}
	return float64(s.RandomWrite) / float64(s.Writes)
}

// Generate synthesises a trace with the profile's characteristics on
// the given geometry, deterministically for a seed. The address space
// assumes the FTL's clustered layout: cluster c owns a contiguous LPN
// range, so targeting a cluster means drawing LPNs from its range.
func Generate(g topo.Geometry, p Profile, seed uint64) ([]trace.Request, GenStats, error) {
	if err := g.Validate(); err != nil {
		return nil, GenStats{}, err
	}
	if p.Requests <= 0 {
		return nil, GenStats{}, fmt.Errorf("workload %s: Requests %d must be positive", p.Name, p.Requests)
	}
	if p.RateIOPS <= 0 {
		return nil, GenStats{}, fmt.Errorf("workload %s: RateIOPS %v must be positive", p.Name, p.RateIOPS)
	}
	pages := p.PagesPer
	if pages <= 0 {
		pages = units.Page
	}
	footprint := p.Footprint
	pagesPerCluster := g.PagesPerFIMM() * units.Pages(g.FIMMsPerCluster)
	if footprint <= 0 || footprint > pagesPerCluster {
		footprint = pagesPerCluster
	}

	rng := simx.NewRNG(seed)
	var zipf *zipfSampler
	if p.ZipfSkew > 0 {
		zipf = newZipfSampler(footprint.Int64(), p.ZipfSkew)
	}
	hot := HotSet(g, p)
	hotFlats := make(map[int]bool, len(hot))
	for _, c := range hot {
		hotFlats[c.Flat(g)] = true
	}
	var cold []int
	for flat := 0; flat < g.TotalClusters(); flat++ {
		if !hotFlats[flat] {
			cold = append(cold, flat)
		}
	}

	stats := GenStats{HotClusters: hot}
	// Per-cluster sequential cursors, one per direction.
	type cursor struct{ read, write int64 }
	cursors := make(map[int]*cursor)

	meanGapNS := float64(simx.Second) / p.RateIOPS
	// ON/OFF burst rates, scaled to preserve the mean rate.
	bursty := p.BurstFactor > 1 && p.BurstDuty > 0 && p.BurstDuty < 1 && p.BurstPeriod > 0
	onScale, offScale := 1.0, 1.0
	if bursty {
		onScale = p.BurstFactor
		offScale = (1 - p.BurstFactor*p.BurstDuty) / (1 - p.BurstDuty)
		if offScale <= 0 {
			return nil, GenStats{}, fmt.Errorf("workload %s: BurstFactor %v x BurstDuty %v >= 1",
				p.Name, p.BurstFactor, p.BurstDuty)
		}
	}
	var now float64
	reqs := make([]trace.Request, 0, p.Requests)
	for i := 0; i < p.Requests; i++ {
		// Exponential inter-arrival (open-loop offering), modulated by
		// the ON/OFF burst phase.
		gap := meanGapNS
		if bursty {
			if phase := now - float64(int64(now/p.BurstPeriod))*p.BurstPeriod; phase < p.BurstDuty*p.BurstPeriod {
				gap /= onScale
			} else {
				gap /= offScale
			}
		}
		now += gap * expovariate(rng)

		isRead := rng.Bool(p.ReadRatio)
		var flat int
		isHot := len(hot) > 0 && rng.Bool(p.HotIORatio)
		if isHot {
			flat = hot[rng.Intn(len(hot))].Flat(g)
			stats.HotRequests++
		} else if len(cold) > 0 {
			flat = cold[rng.Intn(len(cold))]
		} else {
			flat = hot[rng.Intn(len(hot))].Flat(g)
			stats.HotRequests++
		}

		cur := cursors[flat]
		if cur == nil {
			cur = &cursor{}
			cursors[flat] = cur
		}
		base := int64(flat) * pagesPerCluster.Int64()
		var off int64
		randomness := p.WriteRandomness
		if isRead {
			randomness = p.ReadRandomness
		}
		random := rng.Bool(randomness)
		if random {
			if zipf != nil {
				off = zipf.draw(rng)
			} else {
				off = rng.Int63n(footprint.Int64())
			}
		} else if isRead {
			off = cur.read % footprint.Int64()
			cur.read += pages.Int64()
		} else {
			off = cur.write % footprint.Int64()
			cur.write += pages.Int64()
		}
		if off+pages.Int64() > footprint.Int64() {
			off = footprint.Int64() - pages.Int64()
			if off < 0 {
				off = 0
			}
		}

		op := trace.Write
		if isRead {
			op = trace.Read
			stats.Reads++
			if random {
				stats.RandomReads++
			}
		} else {
			stats.Writes++
			if random {
				stats.RandomWrite++
			}
		}
		reqs = append(reqs, trace.Request{
			Arrival: simx.Time(now),
			Op:      op,
			LPN:     base + off,
			Pages:   pages,
		})
	}
	stats.Requests = len(reqs)
	return reqs, stats, nil
}

// expovariate draws a unit-mean exponential variate.
func expovariate(rng *simx.RNG) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return -math.Log(u)
}

// zipfSampler draws page offsets with probability proportional to
// 1/(rank+1)^skew via inverse-CDF sampling over a precomputed table.
type zipfSampler struct {
	cdf []float64
}

func newZipfSampler(n int64, skew float64) *zipfSampler {
	cdf := make([]float64, n)
	sum := 0.0
	for i := int64(0); i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), skew)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &zipfSampler{cdf: cdf}
}

func (z *zipfSampler) draw(rng *simx.RNG) int64 {
	u := rng.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return int64(lo)
}
