# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# targets, so a green `make check` locally means a green build.

GO ?= go
SIMLINT := bin/simlint

.PHONY: build test race simcheck lint lint-fix-list vet check clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Runtime invariant checks (event-time monotonicity, FTL bijectivity,
# cluster queue conservation) compiled in via the simcheck build tag.
simcheck:
	$(GO) test -tags simcheck ./internal/...

$(SIMLINT): $(shell find cmd/simlint internal/lint -name '*.go' -not -path '*/testdata/*')
	$(GO) build -o $(SIMLINT) ./cmd/simlint

# simlint: the repository's determinism lint suite, run through go vet
# so analysis units and caching come from the build system. See
# docs/static-analysis.md.
lint: $(SIMLINT)
	$(GO) vet -vettool=$(SIMLINT) ./...

# Every active //simlint:* suppression with file:line, for periodic
# audit (testdata fixtures excluded — their suppressions are the test).
lint-fix-list:
	@grep -rn '//simlint:[a-z]' --include='*.go' . \
		| grep -v '/testdata/' | grep -v '^./internal/lint/' | grep -v '^./cmd/simlint/' \
		| sed 's|^\./||' || echo "no active suppressions"

vet:
	$(GO) vet ./...

check: build vet lint test race simcheck

clean:
	rm -rf bin
