# Developer entry points. CI (.github/workflows/ci.yml) runs the same
# targets, so a green `make check` locally means a green build.

GO ?= go
SIMLINT := bin/simlint

.PHONY: build test race simcheck lint lint-fix-list lint-hotzero-list vet fmt-check check clean bench-json bench-compare fault-smoke sweep-smoke metrics-smoke decisions-smoke graph graph-check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The race detector only has goroutines to watch inside the
# orchestration scope (internal/sweep) and its consumer equivalence
# tests — everything else is single-threaded by the isosafe/nospawn
# contract, so racing the full suite would just slow CI down.
race:
	$(GO) test -race ./internal/sweep/ ./internal/experiments/

# Runtime invariant checks (event-time monotonicity, FTL bijectivity,
# cluster queue conservation, pooled-object lifecycle + leak ledger)
# compiled in via the simcheck build tag. Includes the seed-42 golden
# replay, so a leaked pooled object anywhere in a full run fails here
# with its pool's name.
simcheck:
	$(GO) test -tags simcheck ./internal/...

$(SIMLINT): $(shell find cmd/simlint internal/lint -name '*.go' -not -path '*/testdata/*')
	$(GO) build -o $(SIMLINT) ./cmd/simlint

# simlint: the repository's determinism lint suite, run through go vet
# so analysis units and caching come from the build system. Runs twice:
# once over the default build and once with -tags simcheck, so the
# invariant-checking file variants are linted too. See
# docs/static-analysis.md.
lint: $(SIMLINT)
	$(GO) vet -vettool=$(SIMLINT) ./...
	$(GO) vet -tags simcheck -vettool=$(SIMLINT) ./...

# Every active //simlint:* suppression with file:line, for periodic
# audit (testdata fixtures excluded — their suppressions are the test).
lint-fix-list:
	@grep -rn '//simlint:[a-z]' --include='*.go' . \
		| grep -v '/testdata/' | grep -v '^./internal/lint/' | grep -v '^./cmd/simlint/' \
		| sed 's|^\./||' || echo "no active suppressions"

# Every audited hot-path escape (//simlint:cold pruned functions and
# //simlint:coldalloc allocation sites) with file:line — the standing
# review list for hotzero's allocation-freedom certificate.
lint-hotzero-list:
	@grep -rn '//simlint:cold' --include='*.go' . \
		| grep -v '/testdata/' | grep -v '^./internal/lint/' | grep -v '^./cmd/simlint/' \
		| sed 's|^\./||' || echo "no audited hot-path escapes"

# Regenerate the certified component-communication graph artifacts
# (docs/graph/components.{dot,json}) from source. Fails if any
# cross-package component reference is neither a componentEdges
# manifest row nor an audited //simlint:edge site, or if a manifest row
# no longer has a witnessing reference. See docs/architecture.md.
graph:
	$(GO) run ./cmd/simgraph

# CI variant: re-render in memory and fail if the committed artifacts
# are stale instead of rewriting them.
graph-check:
	$(GO) run ./cmd/simgraph -check

vet:
	$(GO) vet ./...

# gofmt cleanliness: fails listing any file that gofmt would rewrite
# (testdata fixtures included — they are parsed Go like everything else).
fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then echo "gofmt needed on:"; echo "$$out"; exit 1; fi

# One pass over every figure/table benchmark with allocation stats,
# serialised to JSON (see docs/performance.md). BENCH_PR3.json is the
# committed baseline the CI bench smoke job compares against.
BENCH_JSON ?= BENCH_PR3.json
bench-json:
	$(GO) test . -run '^$$' -bench 'Benchmark(Table|Fig)' -benchtime 1x -benchmem \
		| $(GO) run ./cmd/benchjson -o $(BENCH_JSON)

# Fail if allocs/op regressed >10% against the committed baseline.
bench-compare:
	$(GO) run ./cmd/benchjson -compare BENCH_PR3.json -against $(BENCH_JSON)

# Degraded-mode smoke: the degraded-array study (reference fault plan,
# reduced 2x4 geometry) written to FAULT_TABLE, plus the faulted golden
# replay and the fault lifecycle tests with the simcheck leak ledger
# armed. See docs/fault-injection.md.
FAULT_TABLE ?= fault-table.txt
fault-smoke:
	$(GO) run ./cmd/triplea-bench -experiment fault -requests 4000 \
		-switches 2 -clusters 4 | tee $(FAULT_TABLE)
	$(GO) test -tags simcheck -run 'TestFaultedGoldenReplay' -v ./internal/experiments/
	$(GO) test -tags simcheck ./internal/fault/

# Parallel-sweep smoke: the 16-point Fig12 sweep benchmarked serial vs
# parallel (wall-clock + speedup evidence, see docs/performance.md),
# serialized to SWEEP_JSON, plus the serial/parallel byte-equivalence
# tests and the race pass over the orchestration scope.
SWEEP_JSON ?= BENCH_PR6.json
sweep-smoke:
	$(GO) test . -run '^$$' -bench 'BenchmarkSweep' -benchtime 1x -benchmem \
		| $(GO) run ./cmd/benchjson -o $(SWEEP_JSON)
	$(GO) test -run 'TestParallel' -v ./internal/experiments/
	$(GO) test -race ./internal/sweep/

# Streaming-metrics smoke: the recorder footprint benchmarks (exact vs
# streaming at 10^5 and 10^6 requests, with the steady-state
# recorder-bytes/op metric) serialized to METRICS_JSON, gated flat
# (±10%) between the 100k and 1M streaming runs — the O(1)-state
# contract of docs/metrics.md — plus the streaming determinism/accuracy
# tests and an end-to-end streaming-backend run of Table 1.
METRICS_JSON ?= BENCH_PR8.json
metrics-smoke:
	$(GO) test . -run '^$$' -bench 'BenchmarkRecorder' -benchtime 1x -benchmem \
		| $(GO) run ./cmd/benchjson -o $(METRICS_JSON)
	$(GO) run ./cmd/benchjson -flat recorder-bytes/op \
		-names RecorderStreaming100k,RecorderStreaming1M -against $(METRICS_JSON)
	$(GO) test -run 'TestStreaming|TestPercentileNearestRank|TestPropertyStreamingAccuracy|TestSustainedIOPSBackendsAgree' \
		-v ./internal/metrics/ ./internal/experiments/
	$(GO) run ./cmd/triplea-bench -experiment table1 -requests 4000 \
		-switches 2 -clusters 4 -metrics streaming

# Decision flight-recorder smoke (see docs/decision-traces.md): the
# Table 2 baseline benchmark with recording off, gated against the
# committed baselines on BOTH allocs/op (vs BENCH_PR3.json — exact, the
# hot path must stay allocation-free) and ns/op (vs BENCH_PR10.json,
# ±10% — the zero-overhead-off contract), then the regret study table
# written to REGRET_TABLE, the seed-42 decision-trace golden, the
# pure-observation pin and the recorder unit tests.
DECISIONS_JSON ?= bench-decisions.json
REGRET_TABLE ?= regret-table.txt
decisions-smoke:
	$(GO) test . -run '^$$' -bench 'BenchmarkTable02Baseline' -benchtime 1x -benchmem \
		| $(GO) run ./cmd/benchjson -o $(DECISIONS_JSON)
	$(GO) run ./cmd/benchjson -compare BENCH_PR3.json -against $(DECISIONS_JSON) \
		-names Table02Baseline
	$(GO) run ./cmd/benchjson -compare BENCH_PR10.json -against $(DECISIONS_JSON) \
		-metric ns/op -names Table02Baseline
	$(GO) run ./cmd/triplea-bench -experiment regret -requests 4000 \
		-switches 2 -clusters 8 | tee $(REGRET_TABLE)
	$(GO) test -run 'TestDecisionTraceGolden|TestRecordingIsPureObservation|TestRegretStudySmoke' \
		-v ./internal/experiments/
	$(GO) test ./internal/decision/

check: build fmt-check vet lint graph-check test race simcheck

clean:
	rm -rf bin
